// Package workload provides the deterministic synthetic datasets used by
// the benchmark harness: scaled-down analogs of the paper's evaluation
// graphs (Table 1) that preserve the properties GPM behaviour depends on —
// degree distribution (heavy tails drive load skew), density ordering,
// label multiplicity (drives pattern-class counts), and keyword locality
// (drives graph-reduction benefit).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fractal/internal/graph"
)

// ErdosRenyi generates a G(n, m) random simple graph with the given number
// of vertex labels, deterministic under seed.
func ErdosRenyi(name string, n, m, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	seen := map[[2]graph.VertexID]bool{}
	for b.NumEdges() < m {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]graph.VertexID{u, v}] {
			continue
		}
		seen[[2]graph.VertexID{u, v}] = true
		b.MustAddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to mPer existing vertices with probability proportional to their
// degree, producing the heavy-tailed degree distribution of citation and
// social networks (Patents, Youtube, Orkut).
func BarabasiAlbert(name string, n, mPer, labels int, seed int64) *graph.Graph {
	return BarabasiAlbertCapped(name, n, mPer, labels, 0, seed)
}

// BarabasiAlbertCapped is BarabasiAlbert with an optional maximum degree
// (0 = unbounded): capped hubs model networks whose per-node fanout is
// bounded by construction, like video-relatedness lists.
func BarabasiAlbertCapped(name string, n, mPer, labels, maxDeg int, seed int64) *graph.Graph {
	if mPer < 1 {
		mPer = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(labels)))
	}
	// targets holds one entry per degree unit (the classic BA urn).
	var urn []graph.VertexID
	start := mPer + 1
	if start > n {
		start = n
	}
	// Seed clique among the first vertices.
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			b.MustAddEdge(graph.VertexID(i), graph.VertexID(j))
			urn = append(urn, graph.VertexID(i), graph.VertexID(j))
		}
	}
	degree := make([]int, n)
	for i := 0; i < start; i++ {
		degree[i] = start - 1
	}
	for v := start; v < n; v++ {
		chosen := map[graph.VertexID]bool{}
		attempts := 0
		for len(chosen) < mPer && attempts < 64*mPer {
			attempts++
			var u graph.VertexID
			if len(urn) == 0 {
				u = graph.VertexID(rng.Intn(v))
			} else {
				u = urn[rng.Intn(len(urn))]
			}
			if int(u) >= v || chosen[u] {
				continue
			}
			if maxDeg > 0 && degree[u] >= maxDeg {
				// Redirect to a uniform random vertex below the cap.
				u = graph.VertexID(rng.Intn(v))
				if chosen[u] || (maxDeg > 0 && degree[u] >= maxDeg) {
					continue
				}
			}
			chosen[u] = true
		}
		// Drain chosen in sorted order: map iteration order would otherwise
		// leak into the urn layout and make later preferential-attachment
		// draws — and thus the whole graph — vary between runs of the same
		// seed.
		picks := make([]graph.VertexID, 0, len(chosen))
		for u := range chosen {
			picks = append(picks, u)
		}
		sort.Slice(picks, func(i, j int) bool { return picks[i] < picks[j] })
		for _, u := range picks {
			b.MustAddEdge(graph.VertexID(v), u)
			urn = append(urn, graph.VertexID(v), u)
			degree[u]++
			degree[v]++
		}
	}
	return b.Build()
}

// SkewLabels returns a copy of g whose vertex labels are redrawn from a
// Zipf-like distribution over the given label count: real attribute
// distributions (patent years, video categories) are heavily skewed, which
// is what makes labeled patterns frequent.
func SkewLabels(g *graph.Graph, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.4, 1.0, uint64(labels-1))
	b := graph.NewBuilder(g.Name())
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(graph.Label(zipf.Uint64()))
	}
	for id := 0; id < g.NumEdges(); id++ {
		e := g.EdgeByID(graph.EdgeID(id))
		b.MustAddEdge(e.Src, e.Dst, e.Labels...)
	}
	return b.Build()
}

// Community generates a planted-partition graph: dense communities with
// sparse inter-community edges, the co-authorship structure of Mico.
// Vertices in the same community share a biased label distribution, so
// patterns concentrate as they do in real labeled networks.
func Community(name string, communities, perCommunity int, degIn, degOut float64, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name)
	n := communities * perCommunity
	for i := 0; i < n; i++ {
		comm := i / perCommunity
		// Each community favors a small set of labels.
		l := (comm*3 + rng.Intn(3)) % labels
		b.AddVertex(graph.Label(l))
	}
	seen := map[[2]graph.VertexID]bool{}
	addEdge := func(u, v graph.VertexID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]graph.VertexID{u, v}] {
			return
		}
		seen[[2]graph.VertexID{u, v}] = true
		b.MustAddEdge(u, v)
	}
	for c := 0; c < communities; c++ {
		base := c * perCommunity
		for k := 0; k < int(degIn*float64(perCommunity))/2; k++ {
			u := graph.VertexID(base + rng.Intn(perCommunity))
			v := graph.VertexID(base + rng.Intn(perCommunity))
			addEdge(u, v)
		}
	}
	for k := 0; k < int(degOut*float64(n))/2; k++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		addEdge(u, v)
	}
	return b.Build()
}

// KnowledgeGraph generates a Wikidata-like attributed graph: very sparse
// (tree-ish with extra links), with edge labels (predicates) and Zipf-
// distributed keywords on vertices and edges. Keyword names are "kw0"
// (most frequent) through "kw<keywords-1>" (rarest), so benchmark queries
// can select keywords of known selectivity.
func KnowledgeGraph(name string, n, m, predicates, keywords int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name)
	d := b.Dict()
	kw := make([]graph.Label, keywords)
	for i := range kw {
		kw[i] = d.Intern(fmt.Sprintf("kw%d", i))
	}
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(keywords-1))
	pickKws := func(count int) []graph.Label {
		out := make([]graph.Label, 0, count)
		for i := 0; i < count; i++ {
			out = append(out, kw[zipf.Uint64()])
		}
		return out
	}
	for i := 0; i < n; i++ {
		v := b.AddVertex(graph.Label(rng.Intn(predicates)))
		b.SetVertexKeywords(v, pickKws(1+rng.Intn(3))...)
	}
	// Random spanning structure + extra links, preferential-ish via
	// attaching to low random ranges (hubs at small IDs).
	addAttr := func(u, v graph.VertexID) {
		id, err := b.AddEdge(u, v, graph.Label(rng.Intn(predicates)))
		if err != nil {
			return
		}
		b.SetEdgeKeywords(id, pickKws(1+rng.Intn(2))...)
	}
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		if rng.Float64() < 0.7 {
			u = rng.Intn(int(math.Sqrt(float64(v))) + 1) // hubbiness
		}
		addAttr(graph.VertexID(u), graph.VertexID(v))
	}
	for b.NumEdges() < m {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u != v {
			addAttr(u, v)
		}
	}
	return b.Build()
}

// Relabel returns a copy of g with all vertex labels collapsed to a single
// label: the "-SL" (single-labeled) dataset variants of the paper.
func Relabel(g *graph.Graph, name string) *graph.Graph {
	b := graph.NewBuilder(name)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(0)
	}
	for id := 0; id < g.NumEdges(); id++ {
		e := g.EdgeByID(graph.EdgeID(id))
		b.MustAddEdge(e.Src, e.Dst)
	}
	return b.Build()
}
