package fractal

import (
	"context"
	"fmt"
	"time"

	"fractal/internal/graph"
	"fractal/internal/pattern"
	"fractal/internal/sched"
	"fractal/internal/subgraph"
)

// DecompPlan is a compiled pattern decomposition: a polynomial over local
// counts (degrees, per-edge triangle counts, per-vertex triangle counts)
// whose value is the pattern's non-induced subgraph count, evaluated by one
// shared sweep over the CSR arrays instead of enumeration. Compile one with
// CompileDecomp and run it with Graph.DecompCount; DecompPlan.Explain
// renders it human-readably. See DESIGN.md §14.
type DecompPlan = pattern.DecompPlan

// CompileDecomp searches the decomposition rules for p and compiles the
// matching polynomial. The error reports patterns outside every rule family
// (no valid cut), non-uniform labels, or unusable shapes — callers fall
// back to CompilePlan enumeration (or let ChooseEngine decide).
func CompileDecomp(p *Pattern) (*DecompPlan, error) { return pattern.Decompose(p) }

// EngineChoice pairs the compiled enumeration plan and (when a rule
// matched) the decomposition for one pattern, with the cost model's pick
// and its stable human-readable reason.
type EngineChoice = pattern.Choice

// ChooseEngine compiles both engines for p and picks the cheaper under the
// shared symbolic cost model — the auto-selection behind -engine=auto.
func ChooseEngine(p *Pattern) (*EngineChoice, error) { return pattern.Choose(p) }

// DecompCount evaluates a decomposition plan against the graph and returns
// the pattern's non-induced subgraph count — the same number
// PFractoid(p).Expand(n).Count() enumerates, computed from local counts.
// The graph must carry uniform labels (the sweep is label-blind); a
// uniform-labeled graph whose labels contradict the pattern's yields zero.
func (fg *Graph) DecompCount(dp *DecompPlan) (int64, *Result, error) {
	return fg.DecompCountCtx(context.Background(), dp)
}

// DecompCountCtx is DecompCount with cancellation.
func (fg *Graph) DecompCountCtx(ctx context.Context, dp *DecompPlan) (int64, *Result, error) {
	counts, res, err := fg.EvalDecomps(ctx, []*DecompPlan{dp})
	if err != nil {
		return 0, res, err
	}
	return counts[0], res, nil
}

// EvalDecomps evaluates several decomposition plans in ONE shared
// local-count sweep — the fleet form behind the motifs engine, where the
// sweep cost is paid once and every decomposable pattern's polynomial rides
// it. Returns the non-induced count per plan, index-aligned. The synthetic
// Result reports the sweep as one step whose EC is the number of adjacency
// elements visited, so TotalEC remains comparable with enumeration runs.
func (fg *Graph) EvalDecomps(ctx context.Context, plans []*DecompPlan) ([]int64, *Result, error) {
	start := time.Now()
	g := fg.g
	gvl, gel, ok := g.UniformLabels()
	if !ok {
		return nil, nil, fmt.Errorf("fractal: decomposition requires a uniform-label graph; %s mixes labels (use the plan engine)", g.Name())
	}

	// A plan whose labels contradict the graph's uniform labels matches
	// nothing; evaluate the rest.
	live := make([]*DecompPlan, 0, len(plans))
	liveIdx := make([]int, 0, len(plans))
	for i, dp := range plans {
		if dp == nil {
			return nil, nil, fmt.Errorf("fractal: EvalDecomps got a nil plan at %d", i)
		}
		if decompLabelsMatch(dp.P, gvl, gel) {
			live = append(live, dp)
			liveIdx = append(liveIdx, i)
		}
	}

	var terms subgraph.LocalTerms
	type slot struct {
		pair bool
		idx  int
	}
	slots := make([][]slot, len(live))
	for pi, dp := range live {
		if dp.NeedTri {
			terms.NeedTri = true
		}
		slots[pi] = make([]slot, len(dp.Terms))
		for ti, t := range dp.Terms {
			t := t
			if t.Pair() {
				slots[pi][ti] = slot{pair: true, idx: len(terms.Pair)}
				terms.Pair = append(terms.Pair, t.EvalPair)
			} else {
				slots[pi][ti] = slot{pair: false, idx: len(terms.Vertex)}
				terms.Vertex = append(terms.Vertex, t.EvalVertex)
			}
		}
	}

	cores := 1
	if fg.ctx != nil {
		cfg := fg.ctx.Config()
		if n := cfg.Workers * cfg.CoresPerWorker; n > 1 {
			cores = n
		}
	}
	pairSums, vertexSums, ops, err := subgraph.LocalCounts(ctx, g, terms, cores)
	wall := time.Since(start)
	res := &Result{Wall: wall, Steps: []sched.StepReport{{
		Workflow: "D", Attempts: 1, Wall: wall, EC: ops, Utilization: 1,
	}}}
	if err != nil {
		return nil, res, err
	}

	counts := make([]int64, len(plans))
	for pi, dp := range live {
		sums := make([]int64, len(dp.Terms))
		for ti, s := range slots[pi] {
			if s.pair {
				sums[ti] = pairSums[s.idx]
			} else {
				sums[ti] = vertexSums[s.idx]
			}
		}
		n, err := dp.Eval(sums)
		if err != nil {
			return nil, res, fmt.Errorf("fractal: %w", err)
		}
		counts[liveIdx[pi]] = n
	}
	return counts, res, nil
}

// decompLabelsMatch reports whether a (uniform-labeled) pattern can match
// in a graph with the given uniform labels: every pattern label is either
// the wildcard or the graph's label.
func decompLabelsMatch(p *Pattern, gvl, gel graph.Label) bool {
	if l := p.VertexLabel(0); p.NumVertices() > 0 && l != NoLabel && l != gvl {
		return false
	}
	n := p.NumVertices()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if p.HasEdge(u, v) {
				l := p.EdgeLabel(u, v)
				return l == NoLabel || l == gel
			}
		}
	}
	return true
}
