.PHONY: check test build vet bench bench-micro bench-agg fuzz-agg

check:
	./scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Extension-kernel and set-intersection microbenchmarks (EXPERIMENTS.md).
bench-micro:
	go test -run=NONE -bench='Extensions|Enumerate|Intersect' -benchmem \
		./internal/subgraph/ ./internal/graph/

# Aggregation-pipeline microbenchmarks: allocation-free domain supports and
# the binary wire codec against the retained seed oracle (EXPERIMENTS.md).
bench-agg:
	go test -run=NONE -bench='DomainSupport|AggEncode' -benchmem \
		./internal/agg/

# Short fuzz of the aggregation wire codec (decoders must fail cleanly on
# arbitrary bytes).
fuzz-agg:
	go test -run=NONE -fuzz=FuzzBinaryCodec -fuzztime=10s ./internal/agg/
