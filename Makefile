.PHONY: check test build vet bench bench-micro bench-agg bench-plan fuzz-agg fuzz-plan

check:
	./scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Extension-kernel and set-intersection microbenchmarks (EXPERIMENTS.md).
bench-micro:
	go test -run=NONE -bench='Extensions|Enumerate|Intersect' -benchmem \
		./internal/subgraph/ ./internal/graph/

# Aggregation-pipeline microbenchmarks: allocation-free domain supports and
# the binary wire codec against the retained seed oracle (EXPERIMENTS.md).
bench-agg:
	go test -run=NONE -bench='DomainSupport|AggEncode' -benchmem \
		./internal/agg/

# Compiled-plan engines against the canonical-check enumeration paths:
# motif and clique counting end to end (EXPERIMENTS.md). CI runs this with
# BENCHTIME=1x as a smoke test.
BENCHTIME ?= 1s
bench-plan:
	go test -run=NONE -bench='MotifsPlan|MotifsCanon|CliquesPlan|CliquesCanon' \
		-benchtime=$(BENCHTIME) -benchmem ./internal/apps/

# Short fuzz of the aggregation wire codec (decoders must fail cleanly on
# arbitrary bytes).
fuzz-agg:
	go test -run=NONE -fuzz=FuzzBinaryCodec -fuzztime=10s ./internal/agg/

# Short fuzz of the pattern-plan compiler (every connected pattern must
# compile to a total, restriction-consistent plan).
fuzz-plan:
	go test -run=NONE -fuzz=FuzzPlanCompile -fuzztime=10s ./internal/pattern/
