.PHONY: check check-race check-dist chaos test build vet bench bench-micro bench-agg bench-plan bench-decomp bench-graph fuzz-agg fuzz-plan fuzz-decomp fuzz-graph

check:
	./scripts/check.sh

# Distributed-deployment verification: builds the fractal and fractal-worker
# binaries and runs the distributed differential suite (TCP loopback
# workers, real worker OS processes, SIGKILL-mid-step recovery; results must
# match the in-process engine bit for bit).
check-dist:
	./scripts/check_dist.sh

# Full test suite under the race detector. CI runs this as a dedicated job
# so the main check stays fast; the retry/fault-injection paths are the
# heaviest concurrency in the tree and must stay race-clean.
check-race:
	go test -race ./...

# Seeded fault-schedule smoke: the chaos differential suite (worker severed
# at step start / during quiescence / during aggregation ship; results must
# match the fault-free baselines bit for bit) over a larger seed pool than
# the default `go test` run. Runtime stays bounded: each seed is one small
# application run with sub-second loss-detection timeouts.
CHAOS_SEEDS ?= 6
chaos:
	FRACTAL_CHAOS_SEEDS=$(CHAOS_SEEDS) go test -run 'TestChaos' -count=1 ./internal/apps/

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Extension-kernel and set-intersection microbenchmarks (EXPERIMENTS.md).
bench-micro:
	go test -run=NONE -bench='Extensions|Enumerate|Intersect' -benchmem \
		./internal/subgraph/ ./internal/graph/

# Aggregation-pipeline microbenchmarks: allocation-free domain supports and
# the binary wire codec against the retained seed oracle (EXPERIMENTS.md).
bench-agg:
	go test -run=NONE -bench='DomainSupport|AggEncode' -benchmem \
		./internal/agg/

# Compiled-plan engines against the canonical-check enumeration paths:
# motif and clique counting end to end (EXPERIMENTS.md). CI runs this with
# BENCHTIME=1x as a smoke test.
BENCHTIME ?= 1s
bench-plan:
	go test -run=NONE -bench='MotifsPlan|MotifsCanon|CliquesPlan|CliquesCanon' \
		-benchtime=$(BENCHTIME) -benchmem ./internal/apps/

# Decomposition engine against the pure plan fleet: k=4/k=5 motif counting
# end to end, plus the auto-selecting entry point (EXPERIMENTS.md §14). CI
# runs this with BENCHTIME=1x as a smoke test.
bench-decomp:
	go test -run=NONE -bench='MotifsDecomp|MotifsAuto|MotifsPlan' \
		-benchtime=$(BENCHTIME) -benchmem ./internal/apps/

# CSR + .fgr storage microbenchmarks: mmap load vs edge-list parse (with
# live-heap deltas), neighbor-scan throughput of the packed CSR arrays vs
# per-vertex slices, the decode/validation pass, and the packed label-span
# accessors (AttributeScan pins the stride-1 fast path; EXPERIMENTS.md). CI
# runs this with BENCHTIME=1x as a smoke test.
bench-graph:
	go test -run=NONE -bench='FGRLoad|NeighborScan|FGRDecode|AttributeScan' \
		-benchtime=$(BENCHTIME) -benchmem ./internal/graph/

# Short fuzz of the aggregation wire codec (decoders must fail cleanly on
# arbitrary bytes).
fuzz-agg:
	go test -run=NONE -fuzz=FuzzBinaryCodec -fuzztime=10s ./internal/agg/

# Short fuzz of the .fgr decoder over the checked-in corruption corpus
# (malformed graphs must yield typed errors, never panics or over-reads).
fuzz-graph:
	go test -run=NONE -fuzz=FuzzLoadFGR -fuzztime=10s ./internal/graph/

# Short fuzz of the pattern-plan compiler (every connected pattern must
# compile to a total, restriction-consistent plan).
fuzz-plan:
	go test -run=NONE -fuzz=FuzzPlanCompile -fuzztime=10s ./internal/pattern/

# Short fuzz of the decomposition rule search (total, deterministic, every
# term bound to a generated core subpattern).
fuzz-decomp:
	go test -run=NONE -fuzz=FuzzDecompose -fuzztime=10s ./internal/pattern/
