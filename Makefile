.PHONY: check test build vet bench bench-micro

check:
	./scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Extension-kernel and set-intersection microbenchmarks (EXPERIMENTS.md).
bench-micro:
	go test -run=NONE -bench='Extensions|Enumerate|Intersect' -benchmem \
		./internal/subgraph/ ./internal/graph/
