.PHONY: check test build vet bench

check:
	./scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...
