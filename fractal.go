// Package fractal is a Go implementation of Fractal, the general-purpose
// graph pattern mining (GPM) system of Dias et al. (SIGMOD 2019). It
// provides the paper's subgraph-centric programming interface — fractoids
// composed from extension, aggregation, and filtering primitives — on top of
// a from-scratch, depth-first, work-stealing runtime.
//
// A minimal application (counting triangles):
//
//	fctx, _ := fractal.NewContext(fractal.WithCores(4))
//	defer fctx.Close()
//	g, _ := fctx.LoadGraph("mico.graph")
//	n, _, _ := g.VFractoid().Expand(3).
//		Filter(fractal.CliqueFilter).
//		CountCtx(ctx)
//
// Execution is context-first: the canonical execution methods — RunCtx,
// CountCtx, SubgraphsCtx, AggregationMapCtx — take a context.Context and
// honour cancellation and deadlines end to end, through the master, the
// workers, and every execution core's enumeration loop. The context-free
// variants (Run, Count, Subgraphs, AggregationMap) are thin
// context.Background() wrappers kept for convenience.
//
// See the examples directory for the paper's application listings (motifs,
// cliques, FSM, keyword search, subgraph querying) written against this API.
package fractal

import (
	"fmt"
	"io"
	"os"
	"time"

	"fractal/internal/agg"
	"fractal/internal/graph"
	"fractal/internal/metrics"
	"fractal/internal/pattern"
	"fractal/internal/rpc"
	"fractal/internal/sched"
	"fractal/internal/subgraph"
)

// Config configures the runtime: number of workers, cores per worker,
// work-stealing mode, and transport. See sched.Config.
type Config = sched.Config

// Re-exported work-stealing modes.
const (
	WSNone     = sched.WSNone
	WSInternal = sched.WSInternal
	WSExternal = sched.WSExternal
	WSBoth     = sched.WSBoth
)

// Subgraph is the embedding passed to user functions (filters, aggregation
// key/value extractors, visitors).
type Subgraph = subgraph.Embedding

// Pattern is a subgraph template (for pattern-induced fractoids and
// aggregation keys).
type Pattern = pattern.Pattern

// Plan is a compiled pattern-matching plan: a cost-model-selected vertex
// order with per-level backward constraints and Grochow–Kellis
// symmetry-breaking restrictions, so every automorphism class of embeddings
// is enumerated exactly once. Compile one with CompilePlan (or
// CompileInducedPlan) and run it with Graph.PFractoidPlan; Plan.Explain
// renders it human-readably.
type Plan = pattern.Plan

// CompilePlan compiles p into an execution plan matching p's edges (an
// embedding may have extra edges between matched vertices, the usual
// subgraph-querying semantics). The plan is immutable and reusable across
// graphs and runs. The error reports unusable patterns (empty,
// disconnected).
func CompilePlan(p *Pattern) (*Plan, error) { return pattern.NewPlan(p) }

// CompileInducedPlan compiles p into a plan with vertex-induced matching
// semantics: an embedding must have exactly p's edges among its vertices,
// no more. The multi-plan motif engine is built on induced plans.
func CompileInducedPlan(p *Pattern) (*Plan, error) { return pattern.NewInducedPlan(p) }

// PatternBuilder constructs query patterns for CompilePlan / PFractoid;
// see NewPatternBuilder.
type PatternBuilder = pattern.PBuilder

// NewPatternBuilder returns a builder for an n-vertex query pattern.
// Vertices are 0..n-1; labels default to NoLabel (match any).
func NewPatternBuilder(n int) *PatternBuilder { return pattern.NewBuilder(n) }

// NoLabel is the wildcard vertex/edge label on query patterns.
const NoLabel = pattern.NoLabel

// Named query patterns, reusable with CompilePlan and PFractoid.
func PatternClique(k int) *Pattern { return pattern.Clique(k) }
func PatternTriangle() *Pattern    { return pattern.Triangle() }
func PatternPath(k int) *Pattern   { return pattern.Path(k) }
func PatternCycle(k int) *Pattern  { return pattern.Cycle(k) }

// ConnectedPatterns returns all non-isomorphic connected unlabeled
// patterns on k vertices (k up to pattern.MaxGenVertices), the pattern
// set the multi-plan motif engine compiles and runs.
func ConnectedPatterns(k int) ([]*Pattern, error) { return pattern.ConnectedPatterns(k) }

// DomainSupport is the minimum image-based support value used by FSM.
type DomainSupport = agg.DomainSupport

// Aggregations is the environment of named aggregation results.
type Aggregations = agg.Registry

// StepReport re-exports the per-step execution metrics.
type StepReport = sched.StepReport

// RunReport re-exports the run-level observability record: per-step
// collector snapshots and quiescence rounds, transport traffic, and the
// trace journal of a WithTrace-enabled run. Every execution's Result
// carries one; WriteJSON exports it in the --metrics-out schema.
type RunReport = sched.RunReport

// QuiescenceRound re-exports one master status-polling round of a step.
type QuiescenceRound = sched.QuiescenceRound

// MetricsSnapshot re-exports the point-in-time collector snapshot embedded
// in step reports.
type MetricsSnapshot = metrics.Snapshot

// TraceEvent re-exports one entry of the structured trace journal.
type TraceEvent = metrics.TraceEvent

// WorkerLostError re-exports the typed error returned when a worker becomes
// unreachable (or silent) mid-job; match it with errors.As. With
// WithStepRetries enabled the runtime retries the step instead, and this
// error only surfaces wrapped in a RetryExhaustedError.
type WorkerLostError = sched.WorkerLostError

// RetryExhaustedError re-exports the typed error returned when a step kept
// losing workers until the WithStepRetries budget ran out; its Unwrap chain
// reaches the last WorkerLostError.
type RetryExhaustedError = sched.RetryExhaustedError

// FaultInjector re-exports the transport fault-injection hook (see
// rpc.Script for the scripted implementation); install one with
// WithFaultInjector. Test machinery — production runs leave it unset.
type FaultInjector = rpc.FaultInjector

// AggregationError re-exports the typed error returned when a step's
// aggregation partials could not be merged, encoded, shipped, or decoded;
// match it with errors.As. It replaces the former silent behaviour of
// shipping a partially merged (wrong) or missing aggregation.
type AggregationError = sched.AggregationError

// ReadRunReport parses a RunReport written by RunReport.WriteJSON (the
// cmd/fractal --metrics-out format).
func ReadRunReport(r io.Reader) (*RunReport, error) { return sched.ReadRunReport(r) }

// Context is the entry point of a Fractal application (the FractalContext of
// Figure 2, operator C1). It owns the runtime resources; Close releases
// them.
type Context struct {
	rt    *sched.Runtime
	cache *pattern.CodeCache
}

// Option configures a Context. Options are applied in order over a default
// configuration of one worker, one core, hierarchical work stealing, and
// the in-process loopback transport.
type Option func(*Config)

// WithWorkers sets the number of worker nodes.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithCores sets the number of execution cores per worker.
func WithCores(n int) Option { return func(c *Config) { c.CoresPerWorker = n } }

// WithWS selects the work-stealing configuration (WSNone, WSInternal,
// WSExternal, WSBoth).
func WithWS(ws sched.WorkStealing) Option { return func(c *Config) { c.WS = ws } }

// WithTCP runs master/worker communication over real TCP sockets on
// 127.0.0.1 instead of in-process mailboxes.
func WithTCP() Option { return func(c *Config) { c.UseTCP = true } }

// WithStepTimeout bounds the wall-clock time of each fractal step; a step
// exceeding it is cancelled and execution returns an error wrapping
// context.DeadlineExceeded.
func WithStepTimeout(d time.Duration) Option { return func(c *Config) { c.StepTimeout = d } }

// WithWorkerTimeout sets how long the master waits for a silent worker
// before failing the job with a *sched.WorkerLostError.
func WithWorkerTimeout(d time.Duration) Option { return func(c *Config) { c.WorkerTimeout = d } }

// WithStepRetries makes runs survive worker loss: on a WorkerLostError the
// master discards the failed attempt's partials, excludes the lost worker
// for the rest of the job, and re-executes the step from scratch over the
// survivors, up to n retries per step. Results are bit-identical to
// fault-free runs — exactly one attempt's aggregations are ever committed.
// When the budget runs out the job fails with a *RetryExhaustedError. Note
// that Visit callbacks are at-least-once under retries (a failed attempt's
// visits cannot be unrun); counting and aggregation stay exact.
func WithStepRetries(n int) Option { return func(c *Config) { c.StepRetries = n } }

// WithRetryBackoff sets the pause between a worker-loss failure and the next
// attempt of the step (default 5ms). Only meaningful with WithStepRetries.
func WithRetryBackoff(d time.Duration) Option { return func(c *Config) { c.RetryBackoff = d } }

// WithFaultInjector installs a transport fault injector (drop, delay, or
// sever scheduled by an rpc.Script): every message send of the master and
// the workers consults it first. This is the chaos-testing harness behind
// the retry machinery's differential tests.
func WithFaultInjector(inj FaultInjector) Option { return func(c *Config) { c.FaultInjector = inj } }

// WithTrace enables the structured trace journal: every run records step
// start/end, quiescence rounds, steal attempts and outcomes, and
// cancellation/drain events into a bounded ring exposed through
// Result.Report.Trace. With tracing disabled (the default) every event
// site costs a single nil check and no allocation.
func WithTrace() Option { return func(c *Config) { c.Trace = true } }

// WithTraceCapacity enables tracing with an explicit journal capacity in
// events (the default is metrics.DefaultTraceCapacity, 16384); when the
// ring fills, the oldest events are overwritten and
// Result.Report.TraceDropped counts the loss.
func WithTraceCapacity(n int) Option {
	return func(c *Config) {
		c.Trace = true
		c.TraceCapacity = n
	}
}

// WithConfig replaces the whole configuration with cfg, an escape hatch for
// callers that already hold a Config value. Options after it still apply.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// NewContext starts a runtime configured by the given options:
//
//	fractal.NewContext(fractal.WithWorkers(4), fractal.WithCores(8),
//		fractal.WithTCP(), fractal.WithStepTimeout(30*time.Second))
//
// With no options: one worker, one core, hierarchical work stealing.
func NewContext(opts ...Option) (*Context, error) {
	cfg := Config{WS: WSBoth}
	for _, o := range opts {
		o(&cfg)
	}
	return newContext(cfg)
}

// NewContextCfg starts a runtime from an explicit Config value (the
// pre-options form of NewContext). A zero Config defaults to one worker,
// one core, hierarchical work stealing.
func NewContextCfg(cfg Config) (*Context, error) {
	if cfg.Workers == 0 && cfg.CoresPerWorker == 0 && cfg.WS == WSNone {
		cfg.WS = WSBoth
	}
	return newContext(cfg)
}

func newContext(cfg Config) (*Context, error) {
	rt, err := sched.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Context{rt: rt, cache: pattern.NewCodeCache(0)}, nil
}

// Close shuts the runtime down.
func (c *Context) Close() { c.rt.Close() }

// Config returns the effective runtime configuration.
func (c *Context) Config() Config { return c.rt.Config() }

// LoadGraph loads a graph file (operator I1 of Figure 2). The format is
// chosen by extension: ".graph" adjacency list, ".el" labeled edge list; a
// "<path>.kw" keyword sidecar is applied when present.
func (c *Context) LoadGraph(path string) (*Graph, error) {
	g, err := graph.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fractal: loading %s: %w", path, err)
	}
	return &Graph{ctx: c, g: g}, nil
}

// AdjacencyList is the original name of LoadGraph, retained as an alias.
// The method has always dispatched on the file extension, not only on
// adjacency lists, so the name undersold it.
//
// Deprecated: use LoadGraph.
func (c *Context) AdjacencyList(path string) (*Graph, error) { return c.LoadGraph(path) }

// FromGraph wraps an in-memory graph as a fractal graph.
func (c *Context) FromGraph(g *graph.Graph) *Graph { return &Graph{ctx: c, g: g} }

// Graph is a fractal graph: the handle fractoids are derived from. It also
// exposes the graph reduction operators of Figure 10.
type Graph struct {
	ctx *Context
	g   *graph.Graph
}

// Raw returns the underlying immutable graph.
func (fg *Graph) Raw() *graph.Graph { return fg.g }

// VFractoid derives an empty vertex-induced fractoid (operator B1).
func (fg *Graph) VFractoid() *Fractoid {
	return &Fractoid{fg: fg, kind: subgraph.VertexInduced}
}

// EFractoid derives an empty edge-induced fractoid (operator B2).
func (fg *Graph) EFractoid() *Fractoid {
	return &Fractoid{fg: fg, kind: subgraph.EdgeInduced}
}

// PFractoid derives an empty pattern-induced fractoid for query pattern p
// (operator B3), compiling a plan on the spot — a convenience wrapper over
// CompilePlan + PFractoidPlan. The error reports unusable patterns (empty,
// disconnected).
func (fg *Graph) PFractoid(p *Pattern) *Fractoid {
	plan, err := CompilePlan(p)
	if err != nil {
		return &Fractoid{fg: fg, err: err}
	}
	return fg.PFractoidPlan(plan)
}

// PFractoidPlan derives an empty pattern-induced fractoid from an already
// compiled plan, so one compilation is reusable across graphs and runs
// (the multi-plan motif engine compiles each pattern once per k). A nil
// plan yields a fractoid whose Err is set.
func (fg *Graph) PFractoidPlan(plan *Plan) *Fractoid {
	if plan == nil {
		return &Fractoid{fg: fg, err: fmt.Errorf("fractal: PFractoidPlan requires a non-nil plan")}
	}
	return &Fractoid{fg: fg, kind: subgraph.PatternInduced, plan: plan}
}

// VFractoidWith derives a vertex-induced fractoid using a custom subgraph
// enumerator (Appendix B of the paper; see subgraph.CustomExtender). The
// prototype is cloned per execution core.
func (fg *Graph) VFractoidWith(custom subgraph.CustomExtender) *Fractoid {
	return &Fractoid{fg: fg, kind: subgraph.VertexInduced, custom: custom}
}

// VFilter materializes the reduced graph keeping the vertices that pass f
// (operator R1, Section 4.3).
func (fg *Graph) VFilter(f func(v graph.VertexID, g *graph.Graph) bool) *Graph {
	return &Graph{ctx: fg.ctx, g: graph.Reduce(fg.g, f, nil).Graph}
}

// EFilter materializes the reduced graph keeping the edges that pass f
// (operator R2, Section 4.3).
func (fg *Graph) EFilter(f func(e graph.EdgeID, g *graph.Graph) bool) *Graph {
	return &Graph{ctx: fg.ctx, g: graph.Reduce(fg.g, nil, f).Graph}
}

// Stats returns the Table 1 summary of the graph.
func (fg *Graph) Stats() graph.Stats { return fg.g.Stats() }

// PatternOf returns the canonical pattern key of an embedding, using the
// context-wide code cache. The returned Canon carries the code string (a
// valid aggregation key) and the canonical position of every embedding
// vertex.
func (c *Context) PatternOf(e *Subgraph) pattern.Canon {
	return c.cache.Canonical(e.Pattern())
}

// PatternCanon canonicalizes an explicit pattern through the context-wide
// code cache.
func (c *Context) PatternCanon(p *Pattern) pattern.Canon {
	return c.cache.Canonical(p)
}

// PatternRep returns the shared canonical representative of e's pattern
// class: every embedding of the same isomorphism class yields the identical
// *Pattern (relabeled to canonical vertex order), which makes "first pattern
// wins" reductions independent of embedding arrival and merge order.
// Aggregation value functions should carry this pattern rather than the
// embedding's own numbering.
func (c *Context) PatternRep(e *Subgraph) *Pattern {
	return c.cache.Representative(e.Pattern())
}

// PatternRepOf returns the shared canonical representative of an explicit
// pattern's isomorphism class (the PatternRep analog for patterns built
// outside an embedding, e.g. from FromEmbedding or generated pattern sets).
func (c *Context) PatternRepOf(p *Pattern) *Pattern {
	return c.cache.Representative(p)
}

// MNISupport builds the minimum image-based support contribution of a
// single embedding, aligned by canonical position (the value function of
// the paper's FSM listing). The contribution is built on pooled per-core
// scratch storage and carries the class's shared representative pattern; it
// is meant to flow directly into an aggregation (Aggregate's value
// function), whose first store clones it and whose reduction reclaims it —
// the FSM hot loop allocates nothing per embedding.
func (c *Context) MNISupport(e *Subgraph, threshold int64) *DomainSupport {
	canon, rep := c.cache.CanonicalRep(e.Pattern())
	return agg.ScratchDomainSupport(rep, threshold, e.Vertices(), canon.Perm)
}

// CliqueFilter is the local clique check of Listing 2: the number of edges
// added by the last expansion must equal the number of vertices minus one,
// i.e. every vertex is adjacent to every other.
func CliqueFilter(e *Subgraph) bool {
	nv := e.NumVertices()
	return e.NumEdges()*2 == nv*(nv-1)
}

// LoadGraphOrExit loads a graph file and exits the process with a message
// on failure.
//
// Deprecated: library code must not call os.Exit. Use LoadGraph and handle
// the error.
func (c *Context) LoadGraphOrExit(path string) *Graph {
	fg, err := c.LoadGraph(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return fg
}
