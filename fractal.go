// Package fractal is a Go implementation of Fractal, the general-purpose
// graph pattern mining (GPM) system of Dias et al. (SIGMOD 2019). It
// provides the paper's subgraph-centric programming interface — fractoids
// composed from extension, aggregation, and filtering primitives — on top of
// a from-scratch, depth-first, work-stealing runtime.
//
// A minimal application (counting triangles):
//
//	fctx, _ := fractal.NewContext(fractal.WithCores(4))
//	defer fctx.Close()
//	g, _ := fctx.LoadGraph("mico.graph")
//	n, _, _ := g.VFractoid().Expand(3).
//		Filter(fractal.CliqueFilter).
//		CountCtx(ctx)
//
// Execution is context-first: the canonical execution methods — RunCtx,
// CountCtx, SubgraphsCtx, AggregationMapCtx — take a context.Context and
// honour cancellation and deadlines end to end, through the master, the
// workers, and every execution core's enumeration loop. The context-free
// variants (Run, Count, Subgraphs, AggregationMap) are thin
// context.Background() wrappers kept for convenience.
//
// See the examples directory for the paper's application listings (motifs,
// cliques, FSM, keyword search, subgraph querying) written against this API.
package fractal

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"fractal/internal/agg"
	"fractal/internal/graph"
	"fractal/internal/metrics"
	"fractal/internal/pattern"
	"fractal/internal/rpc"
	"fractal/internal/sched"
	"fractal/internal/subgraph"
)

// Config configures the runtime: number of workers, cores per worker,
// work-stealing mode, and transport. See sched.Config.
type Config = sched.Config

// Re-exported work-stealing modes.
const (
	WSNone     = sched.WSNone
	WSInternal = sched.WSInternal
	WSExternal = sched.WSExternal
	WSBoth     = sched.WSBoth
)

// Subgraph is the embedding passed to user functions (filters, aggregation
// key/value extractors, visitors).
type Subgraph = subgraph.Embedding

// Pattern is a subgraph template (for pattern-induced fractoids and
// aggregation keys).
type Pattern = pattern.Pattern

// Plan is a compiled pattern-matching plan: a cost-model-selected vertex
// order with per-level backward constraints and Grochow–Kellis
// symmetry-breaking restrictions, so every automorphism class of embeddings
// is enumerated exactly once. Compile one with CompilePlan (or
// CompileInducedPlan) and run it with Graph.PFractoidPlan; Plan.Explain
// renders it human-readably.
type Plan = pattern.Plan

// CompilePlan compiles p into an execution plan matching p's edges (an
// embedding may have extra edges between matched vertices, the usual
// subgraph-querying semantics). The plan is immutable and reusable across
// graphs and runs. The error reports unusable patterns (empty,
// disconnected).
func CompilePlan(p *Pattern) (*Plan, error) { return pattern.NewPlan(p) }

// CompileInducedPlan compiles p into a plan with vertex-induced matching
// semantics: an embedding must have exactly p's edges among its vertices,
// no more. The multi-plan motif engine is built on induced plans.
func CompileInducedPlan(p *Pattern) (*Plan, error) { return pattern.NewInducedPlan(p) }

// PatternBuilder constructs query patterns for CompilePlan / PFractoid;
// see NewPatternBuilder.
type PatternBuilder = pattern.PBuilder

// NewPatternBuilder returns a builder for an n-vertex query pattern.
// Vertices are 0..n-1; labels default to NoLabel (match any).
func NewPatternBuilder(n int) *PatternBuilder { return pattern.NewBuilder(n) }

// NoLabel is the wildcard vertex/edge label on query patterns.
const NoLabel = pattern.NoLabel

// Named query patterns, reusable with CompilePlan and PFractoid.
func PatternClique(k int) *Pattern { return pattern.Clique(k) }
func PatternTriangle() *Pattern    { return pattern.Triangle() }
func PatternPath(k int) *Pattern   { return pattern.Path(k) }
func PatternCycle(k int) *Pattern  { return pattern.Cycle(k) }
func PatternStar(k int) *Pattern   { return pattern.Star(k) }

// ConnectedPatterns returns all non-isomorphic connected unlabeled
// patterns on k vertices (k up to pattern.MaxGenVertices), the pattern
// set the multi-plan motif engine compiles and runs.
func ConnectedPatterns(k int) ([]*Pattern, error) { return pattern.ConnectedPatterns(k) }

// DomainSupport is the minimum image-based support value used by FSM.
type DomainSupport = agg.DomainSupport

// Aggregations is the environment of named aggregation results.
type Aggregations = agg.Registry

// StepReport re-exports the per-step execution metrics.
type StepReport = sched.StepReport

// RunReport re-exports the run-level observability record: per-step
// collector snapshots and quiescence rounds, transport traffic, and the
// trace journal of a WithTrace-enabled run. Every execution's Result
// carries one; WriteJSON exports it in the --metrics-out schema.
type RunReport = sched.RunReport

// QuiescenceRound re-exports one master status-polling round of a step.
type QuiescenceRound = sched.QuiescenceRound

// MetricsSnapshot re-exports the point-in-time collector snapshot embedded
// in step reports.
type MetricsSnapshot = metrics.Snapshot

// TraceEvent re-exports one entry of the structured trace journal.
type TraceEvent = metrics.TraceEvent

// WorkerLostError re-exports the typed error returned when a worker becomes
// unreachable (or silent) mid-job; match it with errors.As. With
// WithStepRetries enabled the runtime retries the step instead, and this
// error only surfaces wrapped in a RetryExhaustedError.
type WorkerLostError = sched.WorkerLostError

// RetryExhaustedError re-exports the typed error returned when a step kept
// losing workers until the WithStepRetries budget ran out; its Unwrap chain
// reaches the last WorkerLostError.
type RetryExhaustedError = sched.RetryExhaustedError

// FaultInjector re-exports the transport fault-injection hook (see
// rpc.Script for the scripted implementation); install one with
// WithFaultInjector. Test machinery — production runs leave it unset.
type FaultInjector = rpc.FaultInjector

// AggregationError re-exports the typed error returned when a step's
// aggregation partials could not be merged, encoded, shipped, or decoded;
// match it with errors.As. It replaces the former silent behaviour of
// shipping a partially merged (wrong) or missing aggregation.
type AggregationError = sched.AggregationError

// ConfigError re-exports the typed error returned when a configuration
// option or Config field is rejected by validation; match it with errors.As.
type ConfigError = sched.ConfigError

// JobSpec re-exports the serializable job description of distributed
// deployments: a registered application name, a graph path, and string
// arguments, from which master and worker processes each materialize an
// identical job. Submit one with Context.RunSpec.
type JobSpec = sched.JobSpec

// SpecBuilder re-exports the materializer interface behind registered
// applications (RegisterApp). Its method signatures use RawGraph, AggStore
// and Job so that modules outside this one can implement it.
type SpecBuilder = sched.SpecBuilder

// RawGraph re-exports the runtime adjacency representation: what Graph.Raw
// returns and what SpecBuilder.Build receives. Wrap one with NewBuildGraph
// to compose fractoids from it.
type RawGraph = graph.Graph

// Job re-exports the executable job description that Fractoid.Job produces
// and SpecBuilder.Build returns.
type Job = sched.Job

// AggStore re-exports the aggregation store interface whose prototypes
// SpecBuilder.EnvProtos supplies as wire decode templates.
type AggStore = agg.Store

// WorkerOptions re-exports the configuration of a worker process
// (ServeWorker).
type WorkerOptions = sched.ServeWorkerOptions

// RegisterApp installs a spec builder for an application name. Both the
// master and every worker binary must register the same apps (typically in
// an init function of the package defining the app).
func RegisterApp(name string, b SpecBuilder) { sched.RegisterApp(name, b) }

// NewAggregation returns an empty aggregation store with the given
// reduction: the prototype shape SpecBuilder.EnvProtos supplies as the
// decode template for environment values arriving off the wire.
func NewAggregation[K comparable, V any](reduce func(V, V) V) AggStore {
	return agg.New[K, V](reduce)
}

// AggregationEntries reads the named aggregation of a result environment as
// a plain map — the RunSpec counterpart of AggregationMapCtx. The type
// parameters must match the aggregation's declared key and value types.
func AggregationEntries[K comparable, V any](env *Aggregations, name string) (map[K]V, error) {
	a, err := agg.Typed[K, V](env, name)
	if err != nil {
		return nil, err
	}
	return a.Entries(), nil
}

// ServeWorker runs this process as a fractal worker: bind a listener,
// register with the master at masterAddr, and serve steps until the master
// shuts the worker down (nil return), the transport fails, or ctx ends. The
// master dictates the execution configuration (cores, work stealing,
// timeouts) in its registration reply. This is the library entry point
// behind cmd/fractal-worker.
func ServeWorker(ctx context.Context, masterAddr string, opts WorkerOptions) error {
	return sched.ServeWorker(ctx, masterAddr, opts)
}

// ReadRunReport parses a RunReport written by RunReport.WriteJSON (the
// cmd/fractal --metrics-out format).
func ReadRunReport(r io.Reader) (*RunReport, error) { return sched.ReadRunReport(r) }

// Context is the entry point of a Fractal application (the FractalContext of
// Figure 2, operator C1). It owns the runtime resources; Close releases
// them.
type Context struct {
	rt    *sched.Runtime
	cache *pattern.CodeCache
}

// Option configures a Context. Options are applied in order over a default
// configuration of one worker, one core, hierarchical work stealing, and
// the in-process loopback transport. An option returns an error when its
// argument is nonsensical (zero workers, negative retries, …) — previously
// such values were silently coerced to defaults, hiding deployment typos;
// match the error with errors.As against *ConfigError.
type Option func(*Config) error

// WithWorkers sets the number of worker nodes (at least 1).
func WithWorkers(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("must be at least 1, got %d", n)}
		}
		c.Workers = n
		return nil
	}
}

// WithCores sets the number of execution cores per worker (at least 1).
func WithCores(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return &ConfigError{Field: "CoresPerWorker", Reason: fmt.Sprintf("must be at least 1, got %d", n)}
		}
		c.CoresPerWorker = n
		return nil
	}
}

// WithWS selects the work-stealing configuration (WSNone, WSInternal,
// WSExternal, WSBoth).
func WithWS(ws sched.WorkStealing) Option {
	return func(c *Config) error {
		if ws > WSBoth {
			return &ConfigError{Field: "WS", Reason: fmt.Sprintf("unknown work-stealing mode %d", ws)}
		}
		c.WS = ws
		return nil
	}
}

// WithTCP runs master/worker communication over real TCP sockets on
// 127.0.0.1 instead of in-process mailboxes.
func WithTCP() Option { return func(c *Config) error { c.UseTCP = true; return nil } }

// WithListenAddr switches the context into distributed master mode: no
// in-process workers; instead the master binds a TCP listener at addr (e.g.
// ":7001", or "127.0.0.1:0" for tests — read the bound address back with
// Context.ListenAddr) and serves registrations from fractal-worker processes
// (ServeWorker / cmd/fractal-worker). Jobs are then submitted as
// serializable specs through Context.RunSpec; the worker set is elastic, and
// workers that register mid-job join at the next step attempt.
func WithListenAddr(addr string) Option {
	return func(c *Config) error {
		if addr == "" {
			return &ConfigError{Field: "ListenAddr", Reason: "must not be empty"}
		}
		c.ListenAddr = addr
		return nil
	}
}

// WithStepTimeout bounds the wall-clock time of each fractal step; a step
// exceeding it is cancelled and execution returns an error wrapping
// context.DeadlineExceeded.
func WithStepTimeout(d time.Duration) Option {
	return func(c *Config) error { c.StepTimeout = d; return nil }
}

// WithWorkerTimeout sets how long the master waits for a silent worker
// before failing the job with a *sched.WorkerLostError.
func WithWorkerTimeout(d time.Duration) Option {
	return func(c *Config) error { c.WorkerTimeout = d; return nil }
}

// WithStepRetries makes runs survive worker loss: on a WorkerLostError the
// master discards the failed attempt's partials, excludes the lost worker
// for the rest of the job, and re-executes the step from scratch over the
// survivors, up to n retries per step. Results are bit-identical to
// fault-free runs — exactly one attempt's aggregations are ever committed.
// When the budget runs out the job fails with a *RetryExhaustedError. Note
// that Visit callbacks are at-least-once under retries (a failed attempt's
// visits cannot be unrun); counting and aggregation stay exact.
func WithStepRetries(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return &ConfigError{Field: "StepRetries", Reason: fmt.Sprintf("must not be negative, got %d", n)}
		}
		c.StepRetries = n
		return nil
	}
}

// WithRetryBackoff sets the pause between a worker-loss failure and the next
// attempt of the step (default 5ms). Only meaningful with WithStepRetries.
func WithRetryBackoff(d time.Duration) Option {
	return func(c *Config) error { c.RetryBackoff = d; return nil }
}

// WithFaultInjector installs a transport fault injector (drop, delay, or
// sever scheduled by an rpc.Script): every message send of the master and
// the workers consults it first. This is the chaos-testing harness behind
// the retry machinery's differential tests.
func WithFaultInjector(inj FaultInjector) Option {
	return func(c *Config) error { c.FaultInjector = inj; return nil }
}

// WithTrace enables the structured trace journal: every run records step
// start/end, quiescence rounds, steal attempts and outcomes, and
// cancellation/drain events into a bounded ring exposed through
// Result.Report.Trace. With tracing disabled (the default) every event
// site costs a single nil check and no allocation.
func WithTrace() Option { return func(c *Config) error { c.Trace = true; return nil } }

// WithTraceCapacity enables tracing with an explicit journal capacity in
// events (the default is metrics.DefaultTraceCapacity, 16384); when the
// ring fills, the oldest events are overwritten and
// Result.Report.TraceDropped counts the loss.
func WithTraceCapacity(n int) Option {
	return func(c *Config) error {
		c.Trace = true
		c.TraceCapacity = n
		return nil
	}
}

// WithConfig replaces the whole configuration with cfg, an escape hatch for
// callers that already hold a Config value. Options after it still apply.
func WithConfig(cfg Config) Option { return func(c *Config) error { *c = cfg; return nil } }

// NewContext starts a runtime configured by the given options:
//
//	fractal.NewContext(fractal.WithWorkers(4), fractal.WithCores(8),
//		fractal.WithTCP(), fractal.WithStepTimeout(30*time.Second))
//
// With no options: one worker, one core, hierarchical work stealing.
func NewContext(opts ...Option) (*Context, error) {
	cfg := Config{WS: WSBoth}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	return newContext(cfg)
}

// NewContextCfg starts a runtime from an explicit Config value (the
// pre-options form of NewContext). A zero Config defaults to one worker,
// one core, hierarchical work stealing.
func NewContextCfg(cfg Config) (*Context, error) {
	if cfg.Workers == 0 && cfg.CoresPerWorker == 0 && cfg.WS == WSNone {
		cfg.WS = WSBoth
	}
	return newContext(cfg)
}

func newContext(cfg Config) (*Context, error) {
	rt, err := sched.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Context{rt: rt, cache: pattern.NewCodeCache(0)}, nil
}

// Close shuts the runtime down.
func (c *Context) Close() { c.rt.Close() }

// Config returns the effective runtime configuration.
func (c *Context) Config() Config { return c.rt.Config() }

// ListenAddr returns the bound address of the master listener of a
// WithListenAddr context ("" otherwise); with ":0" this is how the actual
// port is learned.
func (c *Context) ListenAddr() string { return c.rt.ListenAddr() }

// AwaitWorkers blocks until at least n worker processes have registered
// with a WithListenAddr context, or ctx ends.
func (c *Context) AwaitWorkers(ctx context.Context, n int) error {
	return c.rt.AwaitWorkers(ctx, n)
}

// RunSpec executes a serializable job spec: the registered application is
// materialized against the spec's graph and arguments and run through the
// step protocol. It works on every context — in-process ones build and run
// the job locally, exactly as the fluent API would (which is what lets tests
// compare the two paths bit for bit); WithListenAddr masters distribute the
// spec to the registered worker processes. env carries aggregations from
// previous jobs the workflow reads (nil for none).
func (c *Context) RunSpec(ctx context.Context, spec JobSpec, env *Aggregations) (*sched.Result, error) {
	return c.rt.RunSpec(ctx, spec, env)
}

// LoadGraph loads a graph file (operator I1 of Figure 2). The format is
// chosen by extension: ".graph" adjacency list, ".el" labeled edge list, or
// ".fgr" prebuilt binary CSR (memory-mapped instead of parsed; produce one
// with ConvertGraph or `fractal -convert`). For the text formats a
// "<path>.kw" keyword sidecar is applied when present.
func (c *Context) LoadGraph(path string) (*Graph, error) {
	g, err := graph.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fractal: loading %s: %w", path, err)
	}
	return &Graph{ctx: c, g: g}, nil
}

// ConvertGraph loads the graph file at inPath (any format LoadGraph
// accepts) and writes it to outPath in the binary .fgr format, atomically.
// Loading an .fgr file is a single mmap plus a validation pass — no parse,
// no per-vertex allocations — and every process mapping the same file
// shares one physical copy of the graph's CSR arrays. It returns the
// converted graph for inspection (callers typically print its Stats).
func ConvertGraph(inPath, outPath string) (*RawGraph, error) {
	g, err := graph.LoadFile(inPath)
	if err != nil {
		return nil, fmt.Errorf("fractal: loading %s: %w", inPath, err)
	}
	if err := graph.SaveFGR(outPath, g); err != nil {
		return nil, fmt.Errorf("fractal: writing %s: %w", outPath, err)
	}
	return g, nil
}

// AdjacencyList is the original name of LoadGraph, retained as an alias.
// The method has always dispatched on the file extension, not only on
// adjacency lists, so the name undersold it.
//
// Deprecated: use LoadGraph.
func (c *Context) AdjacencyList(path string) (*Graph, error) { return c.LoadGraph(path) }

// FromGraph wraps an in-memory graph as a fractal graph.
func (c *Context) FromGraph(g *graph.Graph) *Graph { return &Graph{ctx: c, g: g} }

// NewBuildGraph wraps an in-memory graph as a fractal graph with no
// context: fractoids derived from it can compose workflows and export them
// with Fractoid.Job, but cannot execute. Spec builders (SpecBuilder.Build)
// use it to construct jobs inside worker processes, where no Context exists.
func NewBuildGraph(g *graph.Graph) *Graph { return &Graph{g: g} }

// Graph is a fractal graph: the handle fractoids are derived from. It also
// exposes the graph reduction operators of Figure 10.
type Graph struct {
	ctx *Context
	g   *graph.Graph
}

// Raw returns the underlying immutable graph.
func (fg *Graph) Raw() *graph.Graph { return fg.g }

// VFractoid derives an empty vertex-induced fractoid (operator B1).
func (fg *Graph) VFractoid() *Fractoid {
	return &Fractoid{fg: fg, kind: subgraph.VertexInduced}
}

// EFractoid derives an empty edge-induced fractoid (operator B2).
func (fg *Graph) EFractoid() *Fractoid {
	return &Fractoid{fg: fg, kind: subgraph.EdgeInduced}
}

// PFractoid derives an empty pattern-induced fractoid for query pattern p
// (operator B3), compiling a plan on the spot — a convenience wrapper over
// CompilePlan + PFractoidPlan. The error reports unusable patterns (empty,
// disconnected).
func (fg *Graph) PFractoid(p *Pattern) *Fractoid {
	plan, err := CompilePlan(p)
	if err != nil {
		return &Fractoid{fg: fg, err: err}
	}
	return fg.PFractoidPlan(plan)
}

// PFractoidPlan derives an empty pattern-induced fractoid from an already
// compiled plan, so one compilation is reusable across graphs and runs
// (the multi-plan motif engine compiles each pattern once per k). A nil
// plan yields a fractoid whose Err is set.
func (fg *Graph) PFractoidPlan(plan *Plan) *Fractoid {
	if plan == nil {
		return &Fractoid{fg: fg, err: fmt.Errorf("fractal: PFractoidPlan requires a non-nil plan")}
	}
	return &Fractoid{fg: fg, kind: subgraph.PatternInduced, plan: plan}
}

// VFractoidWith derives a vertex-induced fractoid using a custom subgraph
// enumerator (Appendix B of the paper; see subgraph.CustomExtender). The
// prototype is cloned per execution core.
func (fg *Graph) VFractoidWith(custom subgraph.CustomExtender) *Fractoid {
	return &Fractoid{fg: fg, kind: subgraph.VertexInduced, custom: custom}
}

// VFilter materializes the reduced graph keeping the vertices that pass f
// (operator R1, Section 4.3).
func (fg *Graph) VFilter(f func(v graph.VertexID, g *graph.Graph) bool) *Graph {
	return &Graph{ctx: fg.ctx, g: graph.Reduce(fg.g, f, nil).Graph}
}

// EFilter materializes the reduced graph keeping the edges that pass f
// (operator R2, Section 4.3).
func (fg *Graph) EFilter(f func(e graph.EdgeID, g *graph.Graph) bool) *Graph {
	return &Graph{ctx: fg.ctx, g: graph.Reduce(fg.g, nil, f).Graph}
}

// Stats returns the Table 1 summary of the graph.
func (fg *Graph) Stats() graph.Stats { return fg.g.Stats() }

// PatternOf returns the canonical pattern key of an embedding, using the
// context-wide code cache. The returned Canon carries the code string (a
// valid aggregation key) and the canonical position of every embedding
// vertex.
func (c *Context) PatternOf(e *Subgraph) pattern.Canon {
	return c.cache.Canonical(e.Pattern())
}

// PatternCanon canonicalizes an explicit pattern through the context-wide
// code cache.
func (c *Context) PatternCanon(p *Pattern) pattern.Canon {
	return c.cache.Canonical(p)
}

// PatternRep returns the shared canonical representative of e's pattern
// class: every embedding of the same isomorphism class yields the identical
// *Pattern (relabeled to canonical vertex order), which makes "first pattern
// wins" reductions independent of embedding arrival and merge order.
// Aggregation value functions should carry this pattern rather than the
// embedding's own numbering.
func (c *Context) PatternRep(e *Subgraph) *Pattern {
	return c.cache.Representative(e.Pattern())
}

// PatternRepOf returns the shared canonical representative of an explicit
// pattern's isomorphism class (the PatternRep analog for patterns built
// outside an embedding, e.g. from FromEmbedding or generated pattern sets).
func (c *Context) PatternRepOf(p *Pattern) *Pattern {
	return c.cache.Representative(p)
}

// MNISupport builds the minimum image-based support contribution of a
// single embedding, aligned by canonical position (the value function of
// the paper's FSM listing). The contribution is built on pooled per-core
// scratch storage and carries the class's shared representative pattern; it
// is meant to flow directly into an aggregation (Aggregate's value
// function), whose first store clones it and whose reduction reclaims it —
// the FSM hot loop allocates nothing per embedding.
func (c *Context) MNISupport(e *Subgraph, threshold int64) *DomainSupport {
	canon, rep := c.cache.CanonicalRep(e.Pattern())
	return agg.ScratchDomainSupport(rep, threshold, e.Vertices(), canon.Perm)
}

// CliqueFilter is the local clique check of Listing 2: the number of edges
// added by the last expansion must equal the number of vertices minus one,
// i.e. every vertex is adjacent to every other.
func CliqueFilter(e *Subgraph) bool {
	nv := e.NumVertices()
	return e.NumEdges()*2 == nv*(nv-1)
}

// LoadGraphOrExit loads a graph file and exits the process with a message
// on failure.
//
// Deprecated: library code must not call os.Exit. Use LoadGraph and handle
// the error.
func (c *Context) LoadGraphOrExit(path string) *Graph {
	fg, err := c.LoadGraph(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return fg
}
