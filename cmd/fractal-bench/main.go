// Command fractal-bench regenerates the tables and figures of the Fractal
// paper's evaluation on the synthetic dataset analogs.
//
// Usage:
//
//	fractal-bench [-quick] [-exp <id>] [-list]
//
// Without -exp, every experiment runs in order. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"

	"fractal/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run (default: all)")
		quick  = flag.Bool("quick", false, "use reduced dataset sizes and sweeps")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		report = flag.String("report", "", "analyze a metrics snapshot written by `fractal --metrics-out` and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *report != "" {
		rep, err := bench.LoadRunReport(*report)
		if err == nil {
			err = bench.AnalyzeRunReport(rep, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fractal-bench:", err)
			os.Exit(1)
		}
		return
	}
	o := bench.Options{Out: os.Stdout, Quick: *quick}
	var err error
	if *exp == "" {
		err = bench.RunAll(o)
	} else {
		err = bench.RunExperiment(*exp, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractal-bench:", err)
		os.Exit(1)
	}
}
