// Command fractal runs the GPM application kernels on a graph file.
//
// Usage:
//
//	fractal -graph <path> -app <name> [flags]
//
// Applications:
//
//	motifs    -k <vertices>
//	cliques   -k <vertices> [-kclist]
//	triangles
//	fsm       -support <min> [-maxedges <n>] [-reduce]
//	query     -pattern <triangle|square|diamond|clique4|clique5|path3|path4|star4|star5|bowtie|house|prism|doublesquare>
//	keywords  -keywords <comma,separated> [-reduce]
//
// Runtime flags: -workers, -cores, -ws (none|internal|external|both), -tcp.
//
// Conversion:
//
//	-convert <out.fgr>   convert -graph to the binary .fgr format and exit.
//	                     An .fgr graph is memory-mapped at load instead of
//	                     parsed, and worker processes sharing a machine map
//	                     one physical copy; point -graph (or a distributed
//	                     job's graph path) at the .fgr file to use it.
//
// Distributed flags:
//
//	-listen <addr>       run as a distributed master: serve registrations
//	                     from fractal-worker processes on addr and execute
//	                     the app across them (motifs, cliques, triangles,
//	                     fsm). The graph path must be readable by every
//	                     worker process.
//	-min-workers <n>     wait for n worker registrations before starting
//
// Plan flags:
//
//	-engine <auto|plan|canon|decomp>
//	                      motifs/query execution engine: auto (default;
//	                      the cost model picks between enumeration and
//	                      pattern decomposition), plan (compiled
//	                      symmetry-broken pattern plans only), canon (the
//	                      canonical-check enumeration path), or decomp
//	                      (force the decomposition sweep; errors where no
//	                      rule applies). cliques honours plan/canon.
//	-explain              print the compiled plan(s) for the selected app
//	                      (motifs, cliques, triangles, query) and exit
//	                      without loading a graph; under auto/decomp this
//	                      includes decomposition polynomials and the
//	                      selection reason
//
// Observability flags:
//
//	-metrics-out <path>  write the run's RunReport (per-step collector
//	                     snapshots, quiescence rounds, transport traffic,
//	                     trace journal when -trace is set) as JSON
//	-trace               enable the structured trace journal for the run
//	-pprof <addr>        serve net/http/pprof and expvar on addr
//	                     (e.g. localhost:6060); /debug/vars exposes the
//	                     last run's report under "fractal.last_run"
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"fractal"
	"fractal/internal/apps"
	"fractal/internal/pattern"
)

// lastReport holds the most recent run's report for the expvar endpoint.
var lastReport atomic.Pointer[fractal.RunReport]

func init() {
	expvar.Publish("fractal.last_run", expvar.Func(func() any {
		return lastReport.Load()
	}))
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "input graph file (.graph, .el, .fgr)")
		convertOut = flag.String("convert", "", "convert -graph to the binary .fgr format at this path and exit")
		app        = flag.String("app", "", "application to run")
		k          = flag.Int("k", 3, "subgraph size (motifs, cliques)")
		kclist     = flag.Bool("kclist", false, "use the KClist custom enumerator (cliques)")
		support    = flag.Int64("support", 100, "minimum support (fsm)")
		maxEdges   = flag.Int("maxedges", 3, "maximum pattern edges (fsm)")
		reduce     = flag.Bool("reduce", false, "enable graph reduction (fsm, keywords)")
		queryName  = flag.String("pattern", "triangle", "query pattern (query)")
		keywords   = flag.String("keywords", "", "comma-separated query keywords (keywords)")
		workers    = flag.Int("workers", 1, "number of workers")
		cores      = flag.Int("cores", 4, "cores per worker")
		wsMode     = flag.String("ws", "both", "work stealing: none|internal|external|both")
		useTCP     = flag.Bool("tcp", false, "use TCP transport between workers")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics snapshot (RunReport JSON) to this file")
		traceOn    = flag.Bool("trace", false, "record the structured trace journal (exported via -metrics-out)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		engine     = flag.String("engine", "auto", "motifs/query engine: auto (cost-model selection), plan (compiled pattern plans), canon (canonical checks), or decomp (forced decomposition)")
		explain    = flag.Bool("explain", false, "print the compiled plan(s) for the selected app and exit (no graph needed)")
		retries    = flag.Int("retries", 0, "re-execute a step up to n times after a worker loss (0: a loss fails the run)")
		retryWait  = flag.Duration("retry-backoff", 0, "pause between step retry attempts (default 5ms)")
		listenAddr = flag.String("listen", "", "run as distributed master: serve worker registrations on this address")
		minWorkers = flag.Int("min-workers", 0, "wait for this many worker registrations before starting (-listen)")
	)
	flag.Parse()
	switch *engine {
	case "auto", "plan", "canon", "decomp":
	default:
		fatal(fmt.Errorf("unknown -engine %q (want auto, plan, canon, or decomp)", *engine))
	}
	// Reject silently-wrong runtime shapes up front, with flag-level messages
	// (the library rejects them too, as ConfigError).
	if *workers < 1 {
		fatal(fmt.Errorf("-workers must be at least 1, got %d", *workers))
	}
	if *cores < 1 {
		fatal(fmt.Errorf("-cores must be at least 1, got %d", *cores))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("-retries must not be negative, got %d", *retries))
	}
	if *minWorkers < 0 {
		fatal(fmt.Errorf("-min-workers must not be negative, got %d", *minWorkers))
	}
	if *minWorkers > 0 && *listenAddr == "" {
		fatal(fmt.Errorf("-min-workers requires -listen"))
	}
	if *explain {
		if *app == "" {
			flag.Usage()
			os.Exit(2)
		}
		check(explainApp(*app, *k, *queryName, *engine))
		return
	}
	if *convertOut != "" {
		if *graphPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		g, err := fractal.ConvertGraph(*graphPath, *convertOut)
		check(err)
		s := g.Stats()
		fmt.Printf("converted %s -> %s: |V|=%d |E|=%d |L|=%d\n", *graphPath, *convertOut, s.V, s.E, s.L)
		return
	}
	if *graphPath == "" || *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fractal: pprof server:", err)
			}
		}()
		fmt.Printf("pprof/expvar listening on http://%s/debug/pprof\n", *pprofAddr)
	}

	cfg := fractal.Config{
		Workers: *workers, CoresPerWorker: *cores, UseTCP: *useTCP, Trace: *traceOn,
		StepRetries: *retries, RetryBackoff: *retryWait, ListenAddr: *listenAddr,
	}
	switch *wsMode {
	case "none":
		cfg.WS = fractal.WSNone
	case "internal":
		cfg.WS = fractal.WSInternal
	case "external":
		cfg.WS = fractal.WSExternal
	case "both":
		cfg.WS = fractal.WSBoth
	default:
		fatal(fmt.Errorf("unknown -ws mode %q", *wsMode))
	}
	ctx, err := fractal.NewContextCfg(cfg)
	if err != nil {
		fatal(err)
	}
	defer ctx.Close()
	if *listenAddr != "" {
		last := runMaster(ctx, *app, *graphPath, *k, *support, *maxEdges, *minWorkers)
		if last != nil && last.Report != nil {
			lastReport.Store(last.Report)
		}
		if *metricsOut != "" {
			check(writeMetrics(*metricsOut, last))
		}
		return
	}
	g, err := ctx.LoadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	s := g.Stats()
	fmt.Printf("loaded %s: |V|=%d |E|=%d |L|=%d\n", s.Name, s.V, s.E, s.L)

	var last *fractal.Result
	switch *app {
	case "motifs":
		runMotifs := apps.Motifs // auto: cost-model fleet selection
		switch *engine {
		case "plan":
			runMotifs = apps.MotifsPlan
		case "canon":
			runMotifs = apps.MotifsCanon
		case "decomp":
			runMotifs = apps.MotifsDecomp
		}
		m, res, err := runMotifs(ctx, g, *k)
		check(err)
		last = res
		fmt.Printf("%d-vertex motifs [%s engine]: %d classes, %d subgraphs, EC=%d, %s\n",
			*k, *engine, len(m), m.Total(), res.TotalEC(), res.Wall)
		for code, pc := range m {
			fmt.Printf("  %x: %d  %v\n", code[:min(8, len(code))], pc.Count, pc.Pat)
		}
	case "cliques":
		var n int64
		var res *fractal.Result
		switch {
		case *kclist:
			n, res, err = apps.CliquesKClist(ctx, g, *k)
		case *engine == "canon":
			n, res, err = apps.CliquesCanon(ctx, g, *k)
		default:
			n, res, err = apps.Cliques(ctx, g, *k)
		}
		check(err)
		last = res
		fmt.Printf("%d-cliques: %d (EC=%d, %s)\n", *k, n, res.TotalEC(), res.Wall)
	case "triangles":
		n, res, err := apps.Triangles(ctx, g)
		check(err)
		last = res
		fmt.Printf("triangles: %d (EC=%d, %s)\n", n, res.TotalEC(), res.Wall)
	case "fsm":
		res, err := apps.FSM(ctx, g, *support, apps.FSMOptions{MaxEdges: *maxEdges, GraphReduction: *reduce})
		check(err)
		last = res.Last
		fmt.Printf("frequent patterns (support >= %d): %d, per level %v\n",
			*support, len(res.Frequent), res.PerLevel)
		for _, ds := range res.Frequent {
			fmt.Printf("  s=%d  %v\n", ds.Support(), ds.Pat)
		}
	case "query":
		p, err := patternByName(*queryName)
		check(err)
		var n int64
		var res *fractal.Result
		used := "plan"
		switch *engine {
		case "decomp":
			dp, derr := fractal.CompileDecomp(p)
			check(derr)
			n, res, err = g.DecompCount(dp)
			used = "decomp"
		case "auto":
			ch, cerr := fractal.ChooseEngine(p)
			check(cerr)
			_, _, uniform := g.Raw().UniformLabels()
			if ch.UseDecomp && uniform {
				n, res, err = g.DecompCount(ch.Decomp)
				used = "decomp"
			} else {
				n, res, err = apps.Query(ctx, g, p)
			}
		default: // plan, canon: the compiled-plan matcher
			n, res, err = apps.Query(ctx, g, p)
		}
		check(err)
		last = res
		fmt.Printf("matches of %s [%s engine]: %d (EC=%d, %s)\n", *queryName, used, n, res.TotalEC(), res.Wall)
	case "keywords":
		if *keywords == "" {
			fatal(fmt.Errorf("-keywords required"))
		}
		res, err := apps.KeywordSearch(ctx, g, strings.Split(*keywords, ","),
			apps.KeywordOptions{GraphReduction: *reduce})
		check(err)
		last = res.Result
		fmt.Printf("covering subgraphs: %d (graph |V|=%d |E|=%d, EC=%d, %s)\n",
			res.Matches, res.GraphV, res.GraphE, res.EC, res.Result.Wall)
	default:
		fatal(fmt.Errorf("unknown -app %q", *app))
	}
	if last != nil && last.Report != nil {
		lastReport.Store(last.Report)
	}
	if *metricsOut != "" {
		check(writeMetrics(*metricsOut, last))
	}
}

// runMaster executes the selected app across registered fractal-worker
// processes through the spec protocol. The graph is named by path — every
// worker loads it from its own filesystem — and interruption (SIGINT,
// SIGTERM) cancels the run cleanly through the step protocol.
func runMaster(fc *fractal.Context, app, graphPath string, k int, support int64, maxEdges, minWorkers int) *fractal.Result {
	fmt.Printf("master listening on %s\n", fc.ListenAddr())
	runCtx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if minWorkers > 0 {
		fmt.Printf("waiting for %d worker(s)...\n", minWorkers)
		check(fc.AwaitWorkers(runCtx, minWorkers))
	}
	switch app {
	case "triangles":
		k = 3
		fallthrough
	case "cliques":
		n, res, err := apps.CliquesDist(runCtx, fc, graphPath, k)
		check(err)
		fmt.Printf("%d-cliques: %d (EC=%d, %s)\n", k, n, res.TotalEC(), res.Wall)
		return res
	case "motifs":
		m, res, err := apps.MotifsDist(runCtx, fc, graphPath, k)
		check(err)
		fmt.Printf("%d-vertex motifs [distributed]: %d classes, %d subgraphs, EC=%d, %s\n",
			k, len(m), m.Total(), res.TotalEC(), res.Wall)
		for code, pc := range m {
			fmt.Printf("  %x: %d  %v\n", code[:min(8, len(code))], pc.Count, pc.Pat)
		}
		return res
	case "fsm":
		res, err := apps.FSMDist(runCtx, fc, graphPath, support, maxEdges)
		check(err)
		fmt.Printf("frequent patterns (support >= %d): %d, per level %v\n",
			support, len(res.Frequent), res.PerLevel)
		for _, ds := range res.Frequent {
			fmt.Printf("  s=%d  %v\n", ds.Support(), ds.Pat)
		}
		return res.Last
	}
	fatal(fmt.Errorf("app %q has no distributed form (want motifs, cliques, triangles, or fsm)", app))
	return nil
}

// writeMetrics dumps the run's RunReport as JSON to path.
func writeMetrics(path string, res *fractal.Result) error {
	if res == nil || res.Report == nil {
		return fmt.Errorf("no run report available for -metrics-out")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics snapshot written to %s\n", path)
	return nil
}

// explainApp compiles the plan(s) the selected application would execute and
// prints their Explain reports without loading a graph. Under -engine=auto
// or -engine=decomp it also prints the decomposition polynomials and the
// cost model's selection reason (assuming a uniform-labeled graph — the
// auto path re-checks labels at run time and falls back to enumeration).
func explainApp(app string, k int, queryName, engine string) error {
	switch app {
	case "motifs":
		pats, err := pattern.ConnectedPatterns(k)
		if err != nil {
			return err
		}
		if engine == "auto" || engine == "decomp" {
			fmt.Printf("%d-vertex motifs: %d patterns\n", k, len(pats))
			fmt.Printf("selection: %s\n\n", apps.MotifsFleetReason(nil, k))
			for _, p := range pats {
				if dp, err := fractal.CompileDecomp(p); err == nil {
					fmt.Println(dp.Explain())
					continue
				}
				pl, err := fractal.CompileInducedPlan(p)
				if err != nil {
					return err
				}
				fmt.Println(pl.Explain())
			}
			return nil
		}
		fmt.Printf("%d-vertex motifs: %d pattern plans\n\n", k, len(pats))
		for _, p := range pats {
			pl, err := fractal.CompileInducedPlan(p)
			if err != nil {
				return err
			}
			fmt.Println(pl.Explain())
		}
		return nil
	case "triangles":
		k = 3
		fallthrough
	case "cliques":
		pl, err := fractal.CompilePlan(pattern.Clique(k))
		if err != nil {
			return err
		}
		fmt.Println(pl.Explain())
		return nil
	case "query":
		p, err := patternByName(queryName)
		if err != nil {
			return err
		}
		switch engine {
		case "decomp":
			dp, err := fractal.CompileDecomp(p)
			if err != nil {
				return err
			}
			fmt.Println(dp.Explain())
			return nil
		case "auto":
			ch, err := fractal.ChooseEngine(p)
			if err != nil {
				return err
			}
			fmt.Printf("selection: %s\n\n", ch.Reason)
			if ch.UseDecomp {
				fmt.Println(ch.Decomp.Explain())
			} else {
				fmt.Println(ch.Plan.Explain())
			}
			return nil
		}
		pl, err := fractal.CompilePlan(p)
		if err != nil {
			return err
		}
		fmt.Println(pl.Explain())
		return nil
	}
	return fmt.Errorf("-explain supports motifs, cliques, triangles, and query, not %q", app)
}

func patternByName(name string) (*fractal.Pattern, error) {
	switch name {
	case "triangle":
		return pattern.Triangle(), nil
	case "square":
		return pattern.Cycle(4), nil
	case "diamond":
		return pattern.ChordalSquare(), nil
	case "clique4":
		return pattern.Clique(4), nil
	case "clique5":
		return pattern.Clique(5), nil
	case "path3":
		return pattern.Path(3), nil
	case "path4":
		return pattern.Path(4), nil
	case "star4":
		return pattern.Star(4), nil
	case "star5":
		return pattern.Star(5), nil
	case "bowtie":
		return pattern.Bowtie(), nil
	case "house":
		return pattern.House(), nil
	case "prism":
		return pattern.SEEDQueries()[6], nil
	case "doublesquare":
		return pattern.DoubleSquare(), nil
	}
	return nil, fmt.Errorf("unknown pattern %q", name)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fractal:", err)
	os.Exit(1)
}
