// Command fractal-worker runs one worker process of a distributed fractal
// deployment: it connects to a master (a fractal.Context created with
// WithListenAddr, e.g. `fractal -listen`), registers, and serves steps until
// the master goes away or the process is signalled.
//
// Usage:
//
//	fractal-worker -master <host:port> [-listen <addr>] [-cores <n>]
//
// The master dictates the execution configuration (cores per worker, work
// stealing, timeouts) in its registration reply; -cores is advisory. Job
// specs name graphs by path, so the graph files must be readable at the
// same paths on this machine. A ".fgr" graph (see `fractal -convert`) is
// memory-mapped rather than parsed, so worker processes sharing a machine
// share one physical copy of the graph.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fractal"
	// Registers the distributable applications (cliques, motifs, fsm); a
	// worker can only materialize specs for apps linked into its binary.
	_ "fractal/internal/apps"
)

func main() {
	var (
		master = flag.String("master", "", "master address to register with (required)")
		listen = flag.String("listen", "", "this worker's own listener address (default 127.0.0.1:0; use :0 to serve remote peers)")
		cores  = flag.Int("cores", 0, "advertised execution cores (advisory; 0: decided by the master)")
	)
	flag.Parse()
	if *master == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cores < 0 {
		fmt.Fprintf(os.Stderr, "fractal-worker: -cores must not be negative, got %d\n", *cores)
		os.Exit(2)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	err := fractal.ServeWorker(ctx, *master, fractal.WorkerOptions{ListenAddr: *listen, Cores: *cores})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "fractal-worker:", err)
		os.Exit(1)
	}
}
