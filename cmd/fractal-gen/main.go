// Command fractal-gen writes the synthetic benchmark datasets (the Table 1
// analogs) to disk in the labeled edge-list format, with keyword sidecars
// where applicable, so they can be fed back through the fractal CLI or any
// other consumer of the formats.
//
// Usage:
//
//	fractal-gen -out <dir> [-dataset <name>]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fractal/internal/graph"
	"fractal/internal/workload"
)

func main() {
	var (
		out  = flag.String("out", ".", "output directory")
		name = flag.String("dataset", "", "dataset to generate (default: all)")
		list = flag.Bool("list", false, "list dataset names and exit")
	)
	flag.Parse()

	if *list {
		for _, d := range workload.Datasets() {
			fmt.Printf("%-12s %s\n", d.Name, d.Description)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, d := range workload.Datasets() {
		if *name != "" && d.Name != *name {
			continue
		}
		g := d.Graph()
		path := filepath.Join(*out, d.Name+".el")
		if err := writeGraph(path, g); err != nil {
			fatal(err)
		}
		s := g.Stats()
		fmt.Printf("wrote %s (|V|=%d |E|=%d |L|=%d)\n", path, s.V, s.E, s.L)
	}
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		return err
	}
	if g.HasKeywords() {
		kf, err := os.Create(path + ".kw")
		if err != nil {
			return err
		}
		defer kf.Close()
		return graph.WriteKeywords(kf, g)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fractal-gen:", err)
	os.Exit(1)
}
