#!/bin/sh
# check_dist.sh verifies the distributed deployment path end to end: it
# builds both binaries, then runs the distributed differential suite —
# spec builders against the fluent kernels, goroutine workers over TCP
# loopback (registration, elastic join, scripted worker loss), and real
# fractal-worker OS processes including the SIGKILL-mid-step case. Counts
# must be bit-identical to the in-process engine throughout.
set -eux
cd "$(dirname "$0")/.."
go build ./cmd/fractal ./cmd/fractal-worker
go test -run 'TestDist' -count=1 ./internal/apps/
