#!/bin/sh
# check.sh runs the full verification suite: static analysis, a build of
# every package, the tests, and the seeded fault-injection smoke. The race
# detector runs as its own CI job (`make check-race`) so this path stays
# fast. CI and the Makefile `check` target both call this script.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go vet ./...
go build ./...
go test ./...
make chaos
make check-dist
