#!/usr/bin/env bash
# bench_json.sh — run a benchmark suite and emit a machine-readable JSON
# snapshot so the perf trajectory is trackable across PRs.
#
# Usage:
#   ./scripts/bench_json.sh [suite] [benchtime]
#
# suite      Makefile bench suite to run (default: decomp). The output file
#            is BENCH_<suite>.json in the repo root.
# benchtime  go test -benchtime value (default: 1s; CI smoke uses 1x).
#
# The JSON shape is stable:
#   {"suite": "...", "go": "...", "benchtime": "...",
#    "results": [{"name": "...", "iterations": N, "ns_per_op": F,
#                 "bytes_per_op": N, "allocs_per_op": N}, ...]}
# Parsing is textual on the standard go-test bench line format; lines that
# do not look like benchmark results are ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

suite="${1:-decomp}"
benchtime="${2:-1s}"
out="BENCH_${suite}.json"

raw="$(make "bench-${suite}" BENCHTIME="${benchtime}")"
printf '%s\n' "${raw}"

printf '%s\n' "${raw}" | awk -v suite="${suite}" -v gover="$(go env GOVERSION)" -v benchtime="${benchtime}" '
BEGIN {
    printf "{\"suite\": \"%s\", \"go\": \"%s\", \"benchtime\": \"%s\", \"results\": [", suite, gover, benchtime
    n = 0
}
$1 ~ /^Benchmark/ && $3 == "ns/op" || ($1 ~ /^Benchmark/ && $4 == "ns/op") {
    # Formats: "BenchmarkX-8  N  F ns/op [B B/op A allocs/op]"
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; nsop = $3
    bop = "null"; aop = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (n++) printf ", "
    printf "{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, iters, nsop, bop, aop
}
END { print "]}" }
' > "${out}"

echo "wrote ${out}"
